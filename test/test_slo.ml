(* Tests for the deadline/SLO layer: Obs.Slo summaries (worst case from
   the critical-path DAG, phase budgets, JSON round-trip), the deadline
   accounting threaded through Migration/Placement, the diff gate on
   slo.* metrics, and the R4 registry entry's determinism. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- Slo.summarize over hand-built spans --- *)

let mig ~sid ~start ~stop =
  {
    Obs.Critpath.sid;
    parent = None;
    kind = "migration";
    kernel = 0;
    tid = Some 1;
    run = 0;
    start;
    stop;
  }

let test_summarize_picks_worst () =
  let spans =
    [
      mig ~sid:1 ~start:0 ~stop:1000;
      mig ~sid:2 ~start:2000 ~stop:5500;
      mig ~sid:3 ~start:6000 ~stop:6100;
    ]
  in
  let t = Obs.Slo.summarize ~spans ~causal:[] () in
  match t.Obs.Slo.kinds with
  | [ ks ] ->
      Alcotest.(check string) "kind" "migration" ks.Obs.Slo.ks_kind;
      Alcotest.(check int) "roots" 3 ks.Obs.Slo.ks_roots;
      Alcotest.(check int) "worst is the exact max" 3500 ks.Obs.Slo.ks_worst_ns;
      Alcotest.(check int) "worst sid" 2 ks.Obs.Slo.ks_worst_sid;
      Alcotest.(check int) "mean" ((1000 + 3500 + 100) / 3)
        ks.Obs.Slo.ks_mean_ns;
      (* 3 samples: the exact nearest-rank p99 is the max. *)
      Alcotest.(check int) "p99 (exact, small n)" 3500 ks.Obs.Slo.ks_p99_ns;
      (* The phase partition covers the whole worst path. *)
      let phase_sum =
        List.fold_left (fun a p -> a + p.Obs.Slo.ph_ns) 0 ks.Obs.Slo.ks_phases
      in
      Alcotest.(check int) "phases sum to worst" 3500 phase_sum
  | ks -> Alcotest.failf "expected one kind, got %d" (List.length ks)

let test_summarize_empty () =
  let t = Obs.Slo.summarize ~spans:[] ~causal:[] () in
  Alcotest.(check int) "no kinds" 0 (List.length t.Obs.Slo.kinds)

let test_json_roundtrip () =
  let spans = [ mig ~sid:1 ~start:0 ~stop:1000; mig ~sid:2 ~start:0 ~stop:900 ] in
  let counters =
    { Obs.Slo.met = 5; violations = 2; dispatch_met = 7; dispatch_violations = 1 }
  in
  let t = Obs.Slo.summarize ~counters ~spans ~causal:[] () in
  match Obs.Slo.of_json (Obs.Slo.to_json t) with
  | Some t' ->
      Alcotest.(check bool) "round-trip exact" true (t = t');
      (* And through the actual parser. *)
      let s = Obs.Json.to_string (Obs.Slo.to_json t) in
      let reparsed =
        match Obs.Json.of_string s with
        | Ok j -> Obs.Slo.of_json j
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "string round-trip exact" true (Some t = reparsed)
  | None -> Alcotest.fail "of_json rejected to_json output"

let test_record_gauges () =
  let m = Obs.Metrics.create () in
  let spans = [ mig ~sid:1 ~start:0 ~stop:1234 ] in
  let t = Obs.Slo.summarize ~spans ~causal:[] () in
  Obs.Slo.record t m;
  Alcotest.(check (float 0.0)) "worst gauge" 1234.
    (Obs.Metrics.gauge m "slo.migration.worst_case_ns");
  Alcotest.(check (float 0.0)) "mean gauge" 1234.
    (Obs.Metrics.gauge m "slo.migration.mean_ns")

(* --- deadline accounting end-to-end through the migration protocol --- *)

(* Two kernels, one thread, two migrations: one with a generous deadline
   (met), one with an impossible 1 ns deadline (violated, with the
   dominant phase attributed). Deadlines must not perturb simulated
   time. *)
let run_deadline_workload ~sink ~generous () =
  let machine = Hw.Machine.create ~seed:42 ~sockets:1 ~cores_per_socket:4 () in
  let cluster = Popcorn.Cluster.boot machine ~kernels:2 ~cores_per_kernel:2 in
  (match sink with
  | None -> ()
  | Some (s : Obs.Sink.t) ->
      Hw.Machine.attach_obs machine ~metrics:s.Obs.Sink.metrics
        ~spans:s.Obs.Sink.spans ~causal:s.Obs.Sink.causal ();
      Popcorn.Cluster.observe ~metrics:s.Obs.Sink.metrics
        ~tracer:s.Obs.Sink.trace cluster);
  let eng = machine.Hw.Machine.eng in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            Popcorn.Api.compute th (Sim.Time.us 5);
            ignore (Popcorn.Api.migrate ?deadline:generous th ~dst:1);
            Popcorn.Api.compute th (Sim.Time.us 5);
            ignore
              (Popcorn.Api.migrate
                 ?deadline:(Option.map (fun _ -> 1) generous)
                 th ~dst:0))
      in
      Popcorn.Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  Sim.Engine.now eng

let test_deadline_counters () =
  let sink = Obs.Sink.create () in
  ignore (run_deadline_workload ~sink:(Some sink) ~generous:(Some (Sim.Time.ms 10)) ());
  let c = Obs.Slo.counters_of_registry sink.Obs.Sink.metrics in
  Alcotest.(check int) "one met" 1 c.Obs.Slo.met;
  Alcotest.(check int) "one violated" 1 c.Obs.Slo.violations;
  (* The blown budget is attributed to a dominant phase. *)
  let phase_total =
    List.fold_left
      (fun acc ph ->
        acc
        + Obs.Metrics.counter sink.Obs.Sink.metrics ("slo.violation_phase." ^ ph))
      0
      [ "save_ctx"; "messaging"; "import"; "schedule_in"; "prefetch" ]
  in
  Alcotest.(check int) "violation attributed to one phase" 1 phase_total;
  (* And the overrun histogram saw exactly the violated migration. *)
  let overruns =
    List.filter_map
      (function
        | ("slo.overrun_ns", None), Obs.Metrics.Hist h -> Some h.count
        | _ -> None)
      (Obs.Metrics.rows sink.Obs.Sink.metrics)
  in
  Alcotest.(check (list int)) "one overrun sample" [ 1 ] overruns

let test_deadlines_never_change_sim_time () =
  let with_deadlines =
    run_deadline_workload ~sink:None ~generous:(Some (Sim.Time.ms 10)) ()
  in
  let without = run_deadline_workload ~sink:None ~generous:None () in
  Alcotest.(check int) "bit-identical end time" without with_deadlines

(* --- the diff gate: a worst-case tail regression must fail --- *)

let doc_with_slo ~worst ~violations =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "popcornsim-bench-v2");
      ( "experiments",
        Obs.Json.Arr
          [
            Obs.Json.Obj
              [
                ("id", Obs.Json.Str "R4");
                ( "metrics",
                  Obs.Json.Obj
                    [
                      ( "counters",
                        Obs.Json.Arr
                          [
                            Obs.Json.Obj
                              [
                                ("name", Obs.Json.Str "slo.violations");
                                ("kernel", Obs.Json.Null);
                                ("value", Obs.Json.Int violations);
                              ];
                          ] );
                      ( "gauges",
                        Obs.Json.Arr
                          [
                            Obs.Json.Obj
                              [
                                ( "name",
                                  Obs.Json.Str "slo.migration.worst_case_ns" );
                                ("kernel", Obs.Json.Null);
                                ("value", Obs.Json.Int worst);
                              ];
                          ] );
                      ("histograms", Obs.Json.Arr []);
                    ] );
              ];
          ] );
    ]

(* The exit-3 condition in `popcornsim diff --fail-on-regress` is
   regressions > 0; these pin that an injected worst-case tail regression
   (and a violation-count increase) produce regressions. *)
let test_diff_gates_worst_case_regression () =
  let old_doc = doc_with_slo ~worst:39000 ~violations:0 in
  let new_doc = doc_with_slo ~worst:60000 ~violations:0 in
  let report, n = Obs.Report.diff ~fail_pct:10. ~old_doc ~new_doc () in
  Alcotest.(check int) "worst-case +54% is a regression" 1 n;
  Alcotest.(check bool) "report names the gauge" true
    (contains ~sub:"slo.migration.worst_case_ns" report)

let test_diff_gates_violations () =
  let old_doc = doc_with_slo ~worst:39000 ~violations:0 in
  let new_doc = doc_with_slo ~worst:39000 ~violations:3 in
  let report, n = Obs.Report.diff ~fail_pct:10. ~old_doc ~new_doc () in
  Alcotest.(check int) "any violation increase is a regression" 1 n;
  Alcotest.(check bool) "report names the counter" true
    (contains ~sub:"slo.violations" report)

let test_diff_passes_identical_slo () =
  let doc = doc_with_slo ~worst:39000 ~violations:2 in
  let _, n = Obs.Report.diff ~fail_pct:10. ~old_doc:doc ~new_doc:doc () in
  Alcotest.(check int) "identical docs pass" 0 n

(* --- analyze renders the SLO block --- *)

let test_analyze_shows_slo_block () =
  let sink = Obs.Sink.create () in
  ignore (run_deadline_workload ~sink:(Some sink) ~generous:(Some (Sim.Time.ms 10)) ());
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "popcornsim-bench-v2");
        ( "experiments",
          Obs.Json.Arr
            [
              Obs.Json.Obj
                [
                  ("id", Obs.Json.Str "W");
                  ("metrics", Obs.Metrics.to_json sink.Obs.Sink.metrics);
                  ( "spans",
                    Obs.Critpath.ispans_to_json
                      (Obs.Critpath.ispans_of_recorder sink.Obs.Sink.spans) );
                  ("causal", Obs.Causal.to_json sink.Obs.Sink.causal);
                ];
            ] );
      ]
  in
  match Obs.Report.analyze_doc doc with
  | Ok report ->
      Alcotest.(check bool) "worst-case block present" true
        (contains ~sub:"worst-case & SLO:" report);
      Alcotest.(check bool) "phase budget present" true
        (contains ~sub:"worst-case budget:" report);
      Alcotest.(check bool) "deadline counters present" true
        (contains ~sub:"deadlines: migrations 1 met / 1 violated" report)
  | Error e -> Alcotest.fail e

(* --- R4: deterministic, and its exported slo section is stable --- *)

let r4 () =
  match Experiments.Registry.find "R4" with
  | Some e -> e
  | None -> Alcotest.fail "R4 not registered"

let test_r4_deterministic () =
  let out (o : Experiments.Registry.outcome) =
    Obs.Json.to_string (Experiments.Registry.outcome_json o)
  in
  let a =
    Experiments.Registry.run_one ~quick:true ~observe:true ~seed:42 (r4 ())
  in
  let b =
    Experiments.Registry.run_one ~quick:true ~observe:true ~seed:42 (r4 ())
  in
  (* Strip the host-time fields (wall clock, legitimately different) by
     comparing the slo + metrics sections only. *)
  let section name doc =
    match Obs.Json.of_string doc with
    | Ok (Obs.Json.Obj fs) -> List.assoc_opt name fs
    | _ -> None
  in
  Alcotest.(check bool) "slo section byte-stable" true
    (section "slo" (out a) = section "slo" (out b)
    && section "slo" (out a) <> None);
  Alcotest.(check bool) "metrics byte-stable" true
    (section "metrics" (out a) = section "metrics" (out b));
  (* Deadline traffic actually flowed. *)
  match a.Experiments.Registry.sink with
  | None -> Alcotest.fail "no sink"
  | Some s ->
      let c = Obs.Slo.counters_of_registry s.Obs.Sink.metrics in
      Alcotest.(check bool) "migration deadlines accounted" true
        (c.Obs.Slo.met + c.Obs.Slo.violations > 0);
      Alcotest.(check bool) "dispatch deadlines accounted" true
        (c.Obs.Slo.dispatch_met + c.Obs.Slo.dispatch_violations > 0)

let () =
  Alcotest.run "slo"
    [
      ( "summarize",
        [
          Alcotest.test_case "picks exact worst + phases" `Quick
            test_summarize_picks_worst;
          Alcotest.test_case "empty run" `Quick test_summarize_empty;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "records gauges" `Quick test_record_gauges;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "met/violated counters" `Quick
            test_deadline_counters;
          Alcotest.test_case "accounting never changes sim time" `Quick
            test_deadlines_never_change_sim_time;
        ] );
      ( "diff-gate",
        [
          Alcotest.test_case "worst-case regression fails" `Quick
            test_diff_gates_worst_case_regression;
          Alcotest.test_case "violation increase fails" `Quick
            test_diff_gates_violations;
          Alcotest.test_case "identical slo passes" `Quick
            test_diff_passes_identical_slo;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "renders SLO block" `Quick
            test_analyze_shows_slo_block;
        ] );
      ( "r4",
        [ Alcotest.test_case "deterministic" `Quick test_r4_deterministic ] );
    ]
