(* Tests for the measurement library. *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 15. (Stats.Summary.total s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.Summary.stddev s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iter (Stats.Summary.add a) [ 1.; 2.; 3. ];
  List.iter (Stats.Summary.add b) [ 4.; 5. ];
  let m = Stats.Summary.merge a b in
  let whole = Stats.Summary.create () in
  List.iter (Stats.Summary.add whole) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.Summary.mean whole)
    (Stats.Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.Summary.variance whole)
    (Stats.Summary.variance m)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  let p50 = Stats.Histogram.median h in
  let p99 = Stats.Histogram.p99 h in
  (* Log-bucketed: ±10% relative accuracy is the contract. *)
  Alcotest.(check bool) "p50 near 500" true (p50 > 400. && p50 < 600.);
  Alcotest.(check bool) "p99 near 990" true (p99 > 850. && p99 < 1100.);
  let p999 = Stats.Histogram.p999 h in
  Alcotest.(check bool) "p999 near 999" true (p999 > 890. && p999 < 1110.);
  Alcotest.(check bool) "ordered" true (p50 <= p99 && p99 <= p999);
  Alcotest.(check bool) "p999 bounded by exact max" true
    (p999 <= Stats.Histogram.max h *. 1.1);
  Alcotest.(check (float 1.)) "mean" 500.5 (Stats.Histogram.mean h)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  Alcotest.(check (float 0.)) "empty p99" 0. (Stats.Histogram.p99 h);
  Alcotest.(check (float 0.)) "empty p999" 0. (Stats.Histogram.p999 h);
  Alcotest.(check (float 0.)) "empty mean" 0. (Stats.Histogram.mean h);
  Alcotest.(check (float 0.)) "empty max" 0. (Stats.Histogram.max h);
  Alcotest.(check int) "empty count" 0 (Stats.Histogram.count h)

let test_histogram_single_sample () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 42.;
  (* With one sample every percentile lands in the same log bucket
     (±10% relative accuracy), and mean/max are exact. *)
  List.iter
    (fun p ->
      let v = Stats.Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within bucket accuracy" p)
        true
        (v > 42. *. 0.9 && v < 42. *. 1.1))
    [ 0.; 50.; 99.; 100. ];
  Alcotest.(check (float 1e-9)) "mean exact" 42. (Stats.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max exact" 42. (Stats.Histogram.max h);
  Alcotest.(check int) "count" 1 (Stats.Histogram.count h)

let test_histogram_max_tracks_largest () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 5.; 100.; 3.; 99. ];
  Alcotest.(check (float 1e-9)) "max is largest seen" 100.
    (Stats.Histogram.max h);
  (* Zero is a legal observation and does not disturb max. *)
  Stats.Histogram.add h 0.;
  Alcotest.(check (float 1e-9)) "zero observation kept" 100.
    (Stats.Histogram.max h);
  Alcotest.(check int) "count includes zero" 5 (Stats.Histogram.count h)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check (float 0.)) "mean defined" 0. (Stats.Summary.mean s);
  Alcotest.(check (float 0.)) "stddev defined" 0. (Stats.Summary.stddev s);
  Alcotest.(check (float 0.)) "total" 0. (Stats.Summary.total s);
  (* Merging with an empty summary is the identity. *)
  let b = Stats.Summary.create () in
  List.iter (Stats.Summary.add b) [ 1.; 2. ];
  let m = Stats.Summary.merge s b in
  Alcotest.(check int) "merge count" 2 (Stats.Summary.count m);
  Alcotest.(check (float 1e-9)) "merge mean" 1.5 (Stats.Summary.mean m);
  let m' = Stats.Summary.merge b s in
  Alcotest.(check (float 1e-9)) "merge symmetric" (Stats.Summary.mean m)
    (Stats.Summary.mean m')

let test_breakdown_single () =
  let b = Stats.Breakdown.create () in
  Stats.Breakdown.add b "only" 7.;
  Alcotest.(check (float 1e-9)) "get" 7. (Stats.Breakdown.get b "only");
  Alcotest.(check (float 1e-9)) "total" 7. (Stats.Breakdown.total b);
  Alcotest.(check (list string)) "one component" [ "only" ]
    (List.map fst (Stats.Breakdown.components b));
  Alcotest.(check (float 1e-9)) "absent component" 0.
    (Stats.Breakdown.get b "missing")

let test_breakdown () =
  let b = Stats.Breakdown.create () in
  Stats.Breakdown.add b "save" 10.;
  Stats.Breakdown.add b "send" 30.;
  Stats.Breakdown.add b "save" 5.;
  Alcotest.(check (float 1e-9)) "accumulates" 15. (Stats.Breakdown.get b "save");
  Alcotest.(check (float 1e-9)) "total" 45. (Stats.Breakdown.total b);
  Alcotest.(check (list string)) "insertion order" [ "save"; "send" ]
    (List.map fst (Stats.Breakdown.components b))

let test_table_render () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "x"; "1" ];
  Stats.Table.add_row t [ "yy"; "22" ];
  let s = Stats.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "aligned" true
    (String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')
    |> fun rows ->
    List.length (List.sort_uniq compare (List.map String.length rows)) = 1);
  Alcotest.check_raises "column mismatch"
    (Invalid_argument "Table.add_row: column count mismatch") (fun () ->
      Stats.Table.add_row t [ "only-one" ])

let test_formatting () =
  Alcotest.(check string) "ns" "750ns" (Stats.Table.fmt_ns 750.);
  Alcotest.(check string) "us" "1.50us" (Stats.Table.fmt_ns 1500.);
  Alcotest.(check string) "ms" "2.000ms" (Stats.Table.fmt_ns 2e6);
  Alcotest.(check string) "rate K" "1.5K/s" (Stats.Table.fmt_rate 1500.);
  Alcotest.(check string) "rate M" "2.50M/s" (Stats.Table.fmt_rate 2.5e6)

let test_series () =
  let t =
    Stats.Table.series ~title:"curves" ~x_label:"n"
      [ ("a", [ (1., 10.); (2., 20.) ]); ("b", [ (2., 5.) ]) ]
  in
  let s = Stats.Table.render t in
  Alcotest.(check bool) "missing as dash" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l ->
           String.length l > 0 && l.[0] = '|'
           && String.index_opt l '-' <> None))

let test_timeseries () =
  let ts = Stats.Timeseries.create ~bucket_ns:100 in
  Stats.Timeseries.add ts ~at:10 1.;
  Stats.Timeseries.add ts ~at:90 2.;
  Stats.Timeseries.add ts ~at:150 5.;
  Alcotest.(check (list (pair int (float 1e-9))))
    "bucketed"
    [ (0, 3.); (100, 5.) ]
    (Stats.Timeseries.buckets ts);
  Alcotest.(check (float 1e-9)) "total" 8. (Stats.Timeseries.total ts)

let test_timeseries_span () =
  let ts = Stats.Timeseries.create ~bucket_ns:100 in
  (* 50..250 covers half of bucket 0, all of bucket 1, half of bucket 2. *)
  Stats.Timeseries.add_span ts ~from_ns:50 ~until_ns:250;
  Alcotest.(check (list (pair int (float 1e-9))))
    "split exactly"
    [ (0, 50.); (100, 100.); (200, 50.) ]
    (Stats.Timeseries.buckets ts);
  Alcotest.(check (list (pair int (float 1e-9))))
    "normalised utilisation"
    [ (0, 0.5); (100, 1.0); (200, 0.5) ]
    (Stats.Timeseries.normalised ts);
  (* Degenerate span is a no-op. *)
  Stats.Timeseries.add_span ts ~from_ns:300 ~until_ns:300;
  Alcotest.(check (float 1e-9)) "unchanged" 200. (Stats.Timeseries.total ts)

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"summary mean within min/max" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
      && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (float_bound_exclusive 1e6))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (fun x -> Stats.Histogram.add h (Float.abs x)) xs;
      let ps = [ 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let vals = List.map (Stats.Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "empty" `Quick test_summary_empty;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "max tracks largest" `Quick
            test_histogram_max_tracks_largest;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "accumulate + order" `Quick test_breakdown;
          Alcotest.test_case "single bucket" `Quick test_breakdown_single;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_formatting;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_timeseries;
          Alcotest.test_case "span splitting" `Quick test_timeseries_span;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_summary_mean_in_range; prop_histogram_percentile_monotone ] );
    ]
