(* Tests for the workload generators and OS adapters: the same program must
   complete correctly on both OS models, and the experiment registry must
   produce tables. *)

open Sim
module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)
module S = Workloads.Loads.Make (Workloads.Adapters.Smp_os)

let mk_popcorn () =
  let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  (m, Popcorn.Cluster.boot m ~kernels:4 ~cores_per_kernel:4)

let mk_smp () =
  let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  (m, Smp.Smp_os.boot m)

let run_popcorn f =
  let machine, cluster = mk_popcorn () in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            f machine.Hw.Machine.eng th)
      in
      Popcorn.Api.wait_exit cluster proc);
  Engine.run machine.Hw.Machine.eng

let run_smp f =
  let machine, sys = mk_smp () in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Smp.Smp_api.start_process sys (fun th -> f machine.Hw.Machine.eng th)
      in
      Smp.Smp_api.wait_exit sys proc);
  Engine.run machine.Hw.Machine.eng

let test_spawn_storm_completes () =
  run_popcorn (fun eng th -> P.spawn_storm eng th ~spawners:4 ~per_spawner:5);
  run_smp (fun eng th -> S.spawn_storm eng th ~spawners:4 ~per_spawner:5)

let test_mmap_stress_completes () =
  run_popcorn (fun eng th -> P.mmap_stress eng th ~workers:4 ~ops:5 ~pages:2);
  run_smp (fun eng th -> S.mmap_stress eng th ~workers:4 ~ops:5 ~pages:2)

let test_futex_pingpong_completes () =
  run_popcorn (fun eng th -> P.futex_pingpong eng th ~pairs:2 ~rounds:5);
  run_smp (fun eng th -> S.futex_pingpong eng th ~pairs:2 ~rounds:5)

let test_apps_complete () =
  run_popcorn (fun eng th -> P.app_cpu_bound eng th ~workers:4 ~iters:3);
  run_popcorn (fun eng th -> P.app_mm_bound eng th ~workers:4 ~iters:3);
  run_popcorn (fun eng th -> P.app_sync_bound eng th ~workers:4 ~iters:3);
  run_smp (fun eng th -> S.app_cpu_bound eng th ~workers:4 ~iters:3);
  run_smp (fun eng th -> S.app_mm_bound eng th ~workers:4 ~iters:3);
  run_smp (fun eng th -> S.app_sync_bound eng th ~workers:4 ~iters:3)

let test_mk_workloads_complete () =
  let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let sys = Multikernel.boot m in
  let eng = m.Hw.Machine.eng in
  let done_count = ref 0 in
  Engine.spawn eng (fun () ->
      ignore
        (Workloads.Mk_workloads.spawn_storm sys eng ~cores:16 ~spawners:2
           ~per_spawner:3 ~on_done:(fun () -> incr done_count)));
  Engine.run eng;
  Engine.spawn eng (fun () ->
      ignore
        (Workloads.Mk_workloads.app_sync_bound sys eng ~cores:16 ~workers:4
           ~iters:3 ~on_done:(fun () -> incr done_count)));
  Engine.run eng;
  Alcotest.(check int) "both finished" 2 !done_count

let test_latch () =
  let eng = Engine.create () in
  let l = Workloads.Latch.create eng 3 in
  let released = ref false in
  Engine.spawn eng (fun () ->
      Workloads.Latch.wait l;
      released := true);
  Engine.schedule eng ~after:1 (fun () -> Workloads.Latch.arrive l);
  Engine.schedule eng ~after:2 (fun () -> Workloads.Latch.arrive l);
  Engine.run eng;
  Alcotest.(check bool) "held" false !released;
  Workloads.Latch.arrive l;
  Engine.run eng;
  Alcotest.(check bool) "released" true !released

(* Experiments are runnable end-to-end in quick mode and yield tables. *)
let test_registry_quick () =
  Alcotest.(check bool) "has experiments" true
    (List.length Experiments.Registry.all >= 8);
  (* Run the two cheapest to keep the suite fast; the bench exe runs all. *)
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some e ->
          let tables =
            e.Experiments.Registry.run
              (Experiments.Run_ctx.create ~quick:true ())
          in
          Alcotest.(check bool) (id ^ " produces tables") true (tables <> [])
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "T1"; "T2" ]

let () =
  Alcotest.run "workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "latch" `Quick test_latch;
          Alcotest.test_case "spawn storm" `Quick test_spawn_storm_completes;
          Alcotest.test_case "mmap stress" `Quick test_mmap_stress_completes;
          Alcotest.test_case "futex pingpong" `Quick
            test_futex_pingpong_completes;
          Alcotest.test_case "app classes" `Slow test_apps_complete;
          Alcotest.test_case "multikernel workloads" `Quick
            test_mk_workloads_complete;
        ] );
      ( "experiments",
        [ Alcotest.test_case "registry quick run" `Slow test_registry_quick ] );
    ]
